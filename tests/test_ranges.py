"""Unit and property-based tests for circular range arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastore.ranges import (
    CircularRange,
    segments_cover_interval,
    segments_overlap,
)

KEY_SPACE = 10_000.0


# --------------------------------------------------------------------------- contains
def test_plain_range_contains_half_open():
    crange = CircularRange(10.0, 20.0)
    assert not crange.contains(10.0)
    assert crange.contains(10.5)
    assert crange.contains(20.0)
    assert not crange.contains(20.5)


def test_wrapping_range_contains():
    crange = CircularRange(9_000.0, 100.0)
    assert crange.contains(9_500.0)
    assert crange.contains(50.0)
    assert crange.contains(100.0)
    assert not crange.contains(9_000.0)
    assert not crange.contains(5_000.0)


def test_full_range_contains_everything():
    crange = CircularRange(5.0, 5.0, full=True)
    assert crange.contains(0.0)
    assert crange.contains(5.0)
    assert crange.contains(9_999.0)


def test_degenerate_range_is_empty():
    crange = CircularRange(5.0, 5.0)
    assert not crange.contains(5.0)
    assert not crange.contains(5.1)
    assert crange.intersect_interval(0.0, 10.0) == []


def test_wraps_and_span():
    assert CircularRange(9_000.0, 100.0).wraps()
    assert not CircularRange(1.0, 2.0).wraps()
    assert CircularRange(9_000.0, 100.0).span(KEY_SPACE) == pytest.approx(1_100.0)
    assert CircularRange(0.0, 0.0, full=True).span(KEY_SPACE) == KEY_SPACE


# --------------------------------------------------------------------------- intersection
def test_intersect_non_wrapping():
    crange = CircularRange(100.0, 200.0)
    assert crange.intersect_interval(150.0, 300.0) == [(150.0, 200.0)]
    assert crange.intersect_interval(0.0, 150.0) == [(100.0, 150.0)]
    assert crange.intersect_interval(300.0, 400.0) == []


def test_intersect_full_range_returns_query():
    crange = CircularRange(0.0, 0.0, full=True)
    assert crange.intersect_interval(5.0, 10.0) == [(5.0, 10.0)]


def test_intersect_wrapping_range_two_segments():
    crange = CircularRange(9_000.0, 500.0)
    segments = crange.intersect_interval(100.0, 9_500.0)
    assert sorted(segments) == [(100.0, 500.0), (9_000.0, 9_500.0)]


def test_intersect_empty_query():
    crange = CircularRange(0.0, 100.0)
    assert crange.intersect_interval(50.0, 50.0) == []


def test_intersect_rejects_wrapping_query():
    with pytest.raises(ValueError):
        CircularRange(0.0, 100.0).intersect_interval(200.0, 100.0)


# --------------------------------------------------------------------------- split / bounds
def test_split_at_divides_range():
    lower, upper = CircularRange(100.0, 200.0).split_at(150.0)
    assert lower == CircularRange(100.0, 150.0)
    assert upper == CircularRange(150.0, 200.0)


def test_split_at_rejects_boundary_keys():
    with pytest.raises(ValueError):
        CircularRange(100.0, 200.0).split_at(200.0)
    with pytest.raises(ValueError):
        CircularRange(100.0, 200.0).split_at(99.0)


def test_extend_and_with_high():
    crange = CircularRange(100.0, 200.0)
    assert crange.extend_low(50.0) == CircularRange(50.0, 200.0)
    assert crange.with_high(300.0) == CircularRange(100.0, 300.0)


def test_tuple_round_trip():
    crange = CircularRange(9_000.0, 100.0)
    assert CircularRange.from_tuple(crange.as_tuple()) == crange


# --------------------------------------------------------------------------- segment helpers
def test_segments_cover_interval_exact():
    assert segments_cover_interval([(0.0, 5.0), (5.0, 10.0)], 0.0, 10.0)


def test_segments_cover_interval_with_overlap():
    assert segments_cover_interval([(0.0, 6.0), (4.0, 10.0)], 0.0, 10.0)


def test_segments_with_gap_do_not_cover():
    assert not segments_cover_interval([(0.0, 4.0), (5.0, 10.0)], 0.0, 10.0)


def test_segments_cover_empty_interval():
    assert segments_cover_interval([], 5.0, 5.0)


def test_segments_overlap_detection():
    assert segments_overlap((0.0, 5.0), (4.0, 6.0))
    assert not segments_overlap((0.0, 5.0), (5.0, 6.0))


# --------------------------------------------------------------------------- properties
keys = st.floats(min_value=0.0, max_value=KEY_SPACE, allow_nan=False, allow_infinity=False)


@settings(max_examples=200, deadline=None)
@given(low=keys, high=keys, key=keys)
def test_property_contains_matches_arc_membership(low, high, key):
    """contains() agrees with the clockwise-arc definition of (low, high]."""
    crange = CircularRange(low, high)
    if low == high:
        expected = False  # the empty arc (x, x]
    elif low < high:
        expected = low < key <= high
    else:
        expected = key > low or key <= high
    assert crange.contains(key) == expected


@settings(max_examples=200, deadline=None)
@given(low=keys, high=keys, lb=keys, ub=keys, probe=keys)
def test_property_intersection_is_conjunction(low, high, lb, ub, probe):
    """A key is in the intersection segments iff it is in both operands."""
    if lb > ub:
        lb, ub = ub, lb
    crange = CircularRange(low, high)
    segments = crange.intersect_interval(lb, ub)
    in_segments = any(lo < probe <= hi for lo, hi in segments)
    expected = crange.contains(probe) and lb < probe <= ub
    assert in_segments == expected


@settings(max_examples=200, deadline=None)
@given(
    segments=st.lists(st.tuples(keys, keys), max_size=8),
    lb=keys,
    ub=keys,
)
def test_property_coverage_implies_no_uncovered_point(segments, lb, ub):
    """If coverage is reported, probing midpoints of the interval finds a segment."""
    if lb > ub:
        lb, ub = ub, lb
    if ub - lb < 1e-6:
        return  # degenerate interval: coverage is trivially true within tolerance
    normalised = [(min(a, b), max(a, b)) for a, b in segments]
    if segments_cover_interval(normalised, lb, ub) and ub > lb:
        for fraction in (0.25, 0.5, 0.75):
            probe = lb + (ub - lb) * fraction
            if probe == lb:
                continue
            assert any(lo < probe <= hi + 1e-9 for lo, hi in normalised)


@settings(max_examples=200, deadline=None)
@given(low=keys, high=keys, key=keys)
def test_property_split_partitions_range(low, high, key):
    """Splitting a range yields two disjoint pieces whose union is the original."""
    crange = CircularRange(low, high)
    if not crange.contains(key) or key == high or low == high:
        return
    lower, upper = crange.split_at(key)
    for probe in (low, high, key, (low + high) / 2.0):
        in_original = crange.contains(probe)
        in_pieces = lower.contains(probe) or upper.contains(probe)
        assert in_original == in_pieces
        assert not (lower.contains(probe) and upper.contains(probe))
