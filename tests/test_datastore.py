"""Unit tests for the Data Store component (on live peers of a small cluster)."""

import pytest

from repro.datastore.items import Item
from tests.conftest import build_cluster


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(seed=21, peers=8)


def owner_of(index, key):
    for peer in index.ring_members():
        if peer.store.owns_key(key):
            return peer
    return None


def test_every_key_has_exactly_one_owner(cluster):
    index, keys = cluster
    for key in keys:
        owners = [p for p in index.ring_members() if p.store.owns_key(key)]
        assert len(owners) == 1, f"key {key} owned by {owners}"


def test_items_reside_at_their_owner(cluster):
    index, keys = cluster
    for key in keys:
        owner = owner_of(index, key)
        assert owner is not None
        assert key in owner.store.items


def test_ranges_partition_the_key_space(cluster):
    index, _keys = cluster
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    for peer, successor in zip(members, members[1:] + members[:1]):
        # Each peer's range ends at its own value and the successor's range
        # starts there: together they partition the circle.
        assert peer.store.range.high == peer.ring.value
        assert successor.store.range.low == peer.ring.value


def test_storage_balance_respects_bounds(cluster):
    index, _keys = cluster
    config = index.config
    overloaded = [
        peer
        for peer in index.ring_members()
        if peer.store.item_count() > config.overflow_threshold
    ]
    # A peer may only stay above 2*sf when there is no free peer left to split
    # with (the paper's balance guarantee presumes spare peers exist).
    if index.pool.available() > 0:
        assert not overloaded, [
            (peer.address, peer.store.item_count()) for peer in overloaded
        ]


def test_store_and_remove_via_rpc(cluster):
    index, _keys = cluster
    owner = index.ring_members()[0]
    key = owner.store.range.high - 0.001
    if not owner.store.owns_key(key):
        pytest.skip("picked key outside range (wrapping peer)")

    def roundtrip():
        stored = yield owner.call(owner.address, "ds_store_item", {"item": {"skv": key, "payload": "x"}})
        removed = yield owner.call(owner.address, "ds_remove_item", {"skv": key})
        return stored, removed

    stored, removed = index.run_process(roundtrip())
    assert stored["stored"]
    assert removed["removed"]


def test_store_rejects_keys_outside_range(cluster):
    index, _keys = cluster
    members = sorted(index.ring_members(), key=lambda p: p.ring.value)
    peer = members[1]
    foreign_key = members[2].store.range.high  # owned by the other peer

    def attempt():
        response = yield peer.call(peer.address, "ds_store_item", {"item": {"skv": foreign_key}})
        return response

    response = index.run_process(attempt())
    assert response == {"stored": False, "reason": "not_responsible"}


def test_probe_reports_ownership_and_successor(cluster):
    index, keys = cluster
    key = keys[0]
    owner = owner_of(index, key)

    def probe():
        response = yield owner.call(owner.address, "ds_probe", {"key": key})
        return response

    response = index.run_process(probe())
    assert response["owns"] is True
    assert response["successor"] is not None


def test_get_local_items_filters_by_interval(cluster):
    index, keys = cluster
    owner = owner_of(index, keys[3])

    def fetch():
        response = yield owner.call(
            owner.address, "ds_get_local_items", {"lb": keys[3] - 0.5, "ub": keys[3] + 0.5}
        )
        return response

    response = index.run_process(fetch())
    returned = [item["skv"] for item in response["items"]]
    assert keys[3] in returned


def test_deactivate_clears_store():
    from repro.datastore.store import DataStore

    index, keys = build_cluster(seed=31, peers=4, keys=[float(k) for k in range(200, 500, 20)])
    peer = index.ring_members()[-1]
    items_before = peer.store.item_count()
    assert items_before >= 0
    removed = peer.store.deactivate()
    assert not peer.store.active
    assert peer.store.range is None
    assert len(removed) == items_before
    assert peer.store.item_count() == 0


def test_set_range_low_to_high_becomes_full():
    index, _ = build_cluster(seed=32, peers=3, keys=[float(k) for k in range(200, 320, 20)])
    peer = index.ring_members()[0]
    peer.store.set_range_low(peer.store.range.high, reason="test")
    assert peer.store.range.full


def test_overflow_triggers_split_callback():
    index, keys = build_cluster(seed=33, peers=3, keys=[float(k) for k in range(200, 320, 20)])
    peer = index.ring_members()[0]
    calls = []
    peer.store.on_overflow = lambda: calls.append("overflow")
    for offset in range(index.config.overflow_threshold + 2):
        peer.store.store_local(Item(peer.store.range.high - 0.0001 * (offset + 1)))
    assert calls


def test_underflow_triggers_merge_callback():
    index, keys = build_cluster(seed=34, peers=3, keys=[float(k) for k in range(200, 320, 20)])
    peer = index.ring_members()[0]
    calls = []
    peer.store.on_underflow = lambda: calls.append("underflow")
    for key in list(peer.store.items.keys()):
        peer.store.remove_local(key)
    assert calls
