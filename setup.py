"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so that
fully offline environments (no access to the ``wheel`` package required by
PEP 517 editable installs) can still do a development install with
``python setup.py develop`` or ``pip install -e . --no-build-isolation``.
"""

from setuptools import setup

setup()
